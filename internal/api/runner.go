package api

import (
	"context"
	"runtime"
	"sync"

	"wishbranch/internal/cpu"
	"wishbranch/internal/lab"
)

// Runner is the one execution contract behind every way this codebase
// runs simulations: in-process through a lab.Lab (LabRunner), remotely
// through a wishsimd daemon (serve.Client), or across a sharded
// cluster (cluster.Coordinator). Campaign drivers target Runner and
// never type-switch on where the work physically executes — the memo
// table, store, journal, and retry machinery all live behind it.
//
// Run executes one spec; Campaign executes a batch and returns its
// items in request order. Per-item failures are reported inside the
// items (exactly one of Result and Err set, mirroring the wire's
// CampaignItem contract); the error return covers transport- and
// batch-level failures only. Both methods must be safe for concurrent
// use.
type Runner interface {
	Run(ctx context.Context, spec lab.Spec) (*cpu.Result, error)
	Campaign(ctx context.Context, specs []lab.Spec) ([]CampaignItem, error)
}

// LabRunner adapts a lab.Lab to the Runner contract: the in-process
// execution path. Campaign fans the batch out across the lab's worker
// budget (Lab.Workers, NumCPU when unset) — concurrency and
// singleflight dedup stay the lab's problem, exactly as they do on the
// serve and cluster paths.
type LabRunner struct {
	Lab *lab.Lab
}

// Run executes one spec through the lab (memo table and store
// included).
func (r LabRunner) Run(ctx context.Context, spec lab.Spec) (*cpu.Result, error) {
	return r.Lab.ResultContext(ctx, spec)
}

// Campaign executes a batch through the lab and returns its items in
// request order. A failed or canceled item carries its error in
// CampaignItem.Err and does not fail the batch, matching the wire
// semantics of /v1/campaign.
func (r LabRunner) Campaign(ctx context.Context, specs []lab.Spec) ([]CampaignItem, error) {
	items := make([]CampaignItem, len(specs))
	workers := r.Lab.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, k lab.Keyed) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			items[i].Key = k.Key
			res, err := r.Lab.ResultKeyed(ctx, k)
			if err != nil {
				items[i].Err = err.Error()
				return
			}
			items[i].Result = res
		}(i, spec.Keyed())
	}
	wg.Wait()
	return items, nil
}
