// Loopexit demonstrates wish loops (§3.2 of the paper): a backward
// branch whose small, variable, unpredictable trip count makes it
// hard to predict. The wish loop predicates the body, so when the
// front end overshoots the exit the extra iterations drain as NOPs
// (late exit) instead of costing a pipeline flush.
//
// The program runs the same loop nest as a normal-branch binary and as
// a wish jump/join/loop binary, then prints the early/late/no-exit
// classification (the paper's Figure 13 taxonomy).
//
// Run with:
//
//	go run ./examples/loopexit
package main

import (
	"fmt"
	"log"

	"wishbranch/internal/compiler"
	"wishbranch/internal/config"
	"wishbranch/internal/cpu"
	"wishbranch/internal/emu"
	"wishbranch/internal/isa"
)

const (
	outer    = 20000
	dataBase = 1 << 20
)

func source() *compiler.Source {
	return &compiler.Source{
		Name: "loopexit",
		Body: []compiler.Node{
			compiler.S(isa.MovI(1, 0), isa.MovI(16, 0), isa.MovI(20, dataBase)),
			compiler.DoWhile{
				Body: []compiler.Node{
					// Trip count for this iteration, from the input data.
					compiler.S(isa.Load(2, 20, 0), isa.MovI(3, 0)),
					// The wish-loop candidate: do { ... } while (++n < trip).
					compiler.DoWhile{
						Body: []compiler.Node{compiler.S(
							isa.ALU(isa.OpAdd, 16, 16, 3),
							isa.ALUI(isa.OpXor, 16, 16, 1),
							isa.ALUI(isa.OpAdd, 3, 3, 1),
						)},
						Cond: compiler.CondOf(compiler.TermRR(isa.CmpLT, 3, 2)),
						Prof: compiler.LoopProfile{AvgTrip: 3, MispredRate: 0.3},
					},
					compiler.S(isa.ALUI(isa.OpAdd, 20, 20, 8), isa.ALUI(isa.OpAdd, 1, 1, 1)),
				},
				Cond: compiler.CondOf(compiler.TermRI(isa.CmpLT, 1, outer)),
			},
		},
	}
}

func initMem(m *emu.Memory) {
	s := uint64(42)
	for i := 0; i < outer; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		m.Store(uint64(dataBase+i*8), 1+int64(s>>33)%5) // trips 1..5
	}
}

func run(v compiler.Variant) *cpu.Result {
	p, err := compiler.Compile(source(), v)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cpu.New(config.DefaultMachine(), p, initMem)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	normal := run(compiler.NormalBranch)
	wish := run(compiler.WishJumpJoinLoop)

	fmt.Printf("normal backward branch:  %8d cycles, %6d flushes, %.1f mispred/1Kµops\n",
		normal.Cycles, normal.Flushes, normal.MispredPer1K())
	fmt.Printf("wish loop:               %8d cycles, %6d flushes\n",
		wish.Cycles, wish.Flushes)
	speedup := float64(normal.Cycles)/float64(wish.Cycles) - 1
	fmt.Printf("speedup from wish loops: %+.1f%%\n\n", speedup*100)

	wl := wish.WishLoop
	fmt.Println("dynamic wish loop classification (the paper's Figure 13 taxonomy):")
	fmt.Printf("  high-confidence correct     %8d\n", wl.HighCorrect)
	fmt.Printf("  high-confidence mispredict  %8d   (flush, as a normal branch)\n", wl.HighMispred)
	fmt.Printf("  low-confidence correct      %8d   (predicated, no penalty)\n", wl.LowCorrect)
	fmt.Printf("  low-confidence early-exit   %8d   (flush: loop left too soon)\n", wl.LowEarly)
	fmt.Printf("  low-confidence late-exit    %8d   (extra iterations drain as NOPs: the win)\n", wl.LowLate)
	fmt.Printf("  low-confidence no-exit      %8d   (flush from the loop fall-through)\n", wl.LowNoExit)
}
