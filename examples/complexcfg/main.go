// Complexcfg reproduces the paper's Figure 6 / Table 1 scenario: a
// region with complex control flow — if (cond1 || cond2) — compiled
// into one wish jump followed by wish joins. It prints the generated
// code for all three lowerings (normal branches, predicated, wish
// branches) and then demonstrates the Table 1 cascade at run time: when
// the wish jump is low-confidence, every following join is forced
// not-taken and the whole region executes as predicated code with no
// possibility of a flush.
//
// Run with:
//
//	go run ./examples/complexcfg
package main

import (
	"fmt"
	"log"

	"wishbranch/internal/compiler"
	"wishbranch/internal/config"
	"wishbranch/internal/cpu"
	"wishbranch/internal/isa"
)

func source(iters int64) *compiler.Source {
	blk := func(op isa.Op, salt int64) []compiler.Node {
		var is []isa.Inst
		for j := int64(0); j < 8; j++ {
			is = append(is, isa.ALUI(op, isa.Reg(16+j%2), isa.Reg(16+j%2), salt+j))
		}
		return []compiler.Node{compiler.S(is...)}
	}
	return &compiler.Source{
		Name: "complexcfg",
		Body: []compiler.Node{
			compiler.S(isa.MovI(1, 0), isa.MovI(16, 0), isa.MovI(17, 0)),
			compiler.DoWhile{
				Body: []compiler.Node{
					// Two pseudo-random condition inputs.
					compiler.S(
						isa.ALUI(isa.OpMul, 2, 1, 0x9E3779B1),
						isa.ALUI(isa.OpShr, 2, 2, 11),
						isa.ALUI(isa.OpAnd, 2, 2, 7),
						isa.ALUI(isa.OpMul, 3, 1, 0x61C88647),
						isa.ALUI(isa.OpShr, 3, 3, 9),
						isa.ALUI(isa.OpAnd, 3, 3, 7),
					),
					// if (cond1 || cond2) { B } else { D } — Figure 6.
					compiler.If{
						Cond: compiler.CondOf(
							compiler.TermRI(isa.CmpEQ, 2, 3),
							compiler.TermRI(isa.CmpEQ, 3, 5),
						),
						Then: blk(isa.OpAdd, 1),
						Else: blk(isa.OpXor, 2),
						Prof: compiler.Profile{TakenProb: 0.23, MispredRate: 0.2},
					},
					compiler.S(isa.ALUI(isa.OpAdd, 1, 1, 1)),
				},
				Cond: compiler.CondOf(compiler.TermRI(isa.CmpLT, 1, iters)),
			},
		},
	}
}

func main() {
	// Show the three lowerings of the Figure 6 region.
	for _, v := range []compiler.Variant{
		compiler.NormalBranch, compiler.BaseMax, compiler.WishJumpJoin,
	} {
		p, err := compiler.Compile(source(4), v)
		if err != nil {
			log.Fatal(err)
		}
		cond, wish := p.StaticCondBranches()
		fmt.Printf("=== %v lowering (%d conditional branches, %d wish) ===\n", v, cond, wish)
		fmt.Println(p.Disassemble())
	}

	// Run the wish binary under the three confidence regimes of
	// Table 1: everything high (threshold 0), the real estimator, and
	// everything low (threshold 16 — the cascade in its purest form).
	fmt.Println("=== Table 1 cascade at run time ===")
	fmt.Println("regime            cycles   flushes  jumps(high/low)  joins(high/low)")
	for _, r := range []struct {
		name string
		thr  int
	}{
		{"all high (thr 0)", 0},
		{"real JRS (thr 8)", 8},
		{"all low (thr 16)", 16},
	} {
		p, err := compiler.Compile(source(20000), compiler.WishJumpJoin)
		if err != nil {
			log.Fatal(err)
		}
		cfg := config.DefaultMachine()
		cfg.JRS.Threshold = r.thr
		c, err := cpu.New(cfg, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		j, jo := res.WishJump, res.WishJoin
		fmt.Printf("%-16s %8d  %8d  %6d/%-6d    %6d/%-6d\n",
			r.name, res.Cycles, res.Flushes,
			j.HighCorrect+j.HighMispred, j.LowCorrect+j.LowMispred,
			jo.HighCorrect+jo.HighMispred, jo.LowCorrect+jo.LowMispred)
	}
	fmt.Println("\nWith the jump forced low-confidence, every join is low too (Table 1's")
	fmt.Println("cascade): the region runs fully predicated and cannot flush.")
}
