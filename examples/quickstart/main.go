// Quickstart: build a small program with one hard-to-predict hammock,
// compile it into the paper's five binary variants (Table 3), simulate
// each on the baseline out-of-order machine (Table 2), and compare.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wishbranch/internal/compiler"
	"wishbranch/internal/config"
	"wishbranch/internal/cpu"
	"wishbranch/internal/emu"
	"wishbranch/internal/isa"
)

// coinMem fills the input array with random coin flips.
func coinMem(m *emu.Memory) {
	s := uint64(2026)
	for i := 0; i < 20000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		m.Store(uint64(1<<20+i*8), int64(s>>62)&1)
	}
}

func main() {
	// Source: for i in 0..20000 { if (coin[i] == 0) {A} else {B} }
	// The condition is a random coin flip read from memory: a branch
	// predictor cannot learn it, so the normal binary flushes constantly.
	then := make([]isa.Inst, 0, 8)
	els := make([]isa.Inst, 0, 8)
	for j := int64(0); j < 8; j++ {
		then = append(then, isa.ALUI(isa.OpAdd, isa.Reg(16+j%4), isa.Reg(16+j%4), j))
		els = append(els, isa.ALUI(isa.OpXor, isa.Reg(16+j%4), isa.Reg(16+j%4), j+9))
	}
	src := &compiler.Source{
		Name: "quickstart",
		Body: []compiler.Node{
			compiler.S(isa.MovI(1, 0), isa.MovI(16, 0), isa.MovI(17, 0), isa.MovI(18, 0), isa.MovI(19, 0),
				isa.MovI(20, 1<<20)),
			compiler.DoWhile{
				Body: []compiler.Node{
					compiler.S(isa.Load(2, 20, 0)),
					compiler.If{
						Cond: compiler.CondOf(compiler.TermRI(isa.CmpEQ, 2, 0)),
						Then: []compiler.Node{compiler.S(then...)},
						Else: []compiler.Node{compiler.S(els...)},
						Prof: compiler.Profile{TakenProb: 0.5, MispredRate: 0.35},
					},
					compiler.S(isa.ALUI(isa.OpAdd, 20, 20, 8), isa.ALUI(isa.OpAdd, 1, 1, 1)),
				},
				Cond: compiler.CondOf(compiler.TermRI(isa.CmpLT, 1, 20000)),
			},
		},
	}

	fmt.Println("binary      cycles     µPC   flushes  mispred/1Kµops  r16 (result)")
	fmt.Println("---------------------------------------------------------------------")
	var ref int64
	for _, v := range compiler.Variants() {
		p, err := compiler.Compile(src, v)
		if err != nil {
			log.Fatalf("compile %v: %v", v, err)
		}
		c, err := cpu.New(config.DefaultMachine(), p, coinMem)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(0)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		r16 := c.ArchState().Regs[16]
		fmt.Printf("%-10s %8d  %5.2f  %8d  %14.1f  %d\n",
			v, res.Cycles, res.UPC(), res.Flushes, res.MispredPer1K(), r16)

		// Every variant must compute the same result as a pure
		// functional execution.
		st := emu.New(p)
		coinMem(st.Mem)
		if _, err := st.Run(0, nil); err != nil {
			log.Fatal(err)
		}
		if st.Regs[16] != r16 {
			log.Fatalf("%v: pipeline result %d != functional %d", v, r16, st.Regs[16])
		}
		if v == compiler.NormalBranch {
			ref = r16
		} else if r16 != ref {
			log.Fatalf("%v: result %d differs from normal binary's %d", v, r16, ref)
		}
	}
	fmt.Println("\nThe predicated binaries eliminate the hammock's flushes; the wish")
	fmt.Println("binaries do the same through low-confidence mode while retaining the")
	fmt.Println("option of branch prediction whenever the branch becomes predictable.")
}
