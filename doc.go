// Package wishbranch reproduces "Wish Branches: Combining Conditional
// Branching and Predication for Adaptive Predicated Execution"
// (Kim, Mutlu, Stark, Patt — MICRO-38, 2005) as a self-contained Go
// library: a predicated µop ISA, an if-converting compiler that emits
// the paper's five binary variants, a cycle-level out-of-order
// processor with the full wish-branch hardware, nine synthetic SPEC INT
// 2000 stand-in workloads, and a harness that regenerates every table
// and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The top-level bench_test.go regenerates each experiment as a
// Go benchmark; cmd/wishbench does the same as a CLI.
package wishbranch
