// Benchmarks that regenerate the paper's evaluation: one benchmark per
// table and figure (the same runners cmd/wishbench uses), plus
// microbenchmarks of the simulation substrates. Key results are
// attached as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and reports the reproduced numbers.
// Figure/table benchmarks run the workloads at a reduced scale to keep
// the suite fast; use cmd/wishbench for full-scale runs.
package wishbranch_test

import (
	"io"
	"testing"
	"time"

	"wishbranch/internal/bpred"
	"wishbranch/internal/cache"
	"wishbranch/internal/compiler"
	"wishbranch/internal/config"
	"wishbranch/internal/cpu"
	"wishbranch/internal/emu"
	"wishbranch/internal/exp"
	"wishbranch/internal/lab"
	"wishbranch/internal/obs"
	"wishbranch/internal/workload"
)

// benchScale shrinks the workloads so every experiment fits benchmark
// budgets.
const benchScale = 0.25

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		lab := benchLab()
		if err := exp.Run(e, lab, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLab returns a fresh serial lab at the benchmark scale.
func benchLab() *exp.Lab {
	l := exp.NewLab()
	l.Scale = benchScale
	l.Sched.Workers = 1
	return l
}

// avgNorm reports the mean normalized execution time of a variant
// (relative to the normal binary) across all nine benchmarks, as a
// benchmark metric.
func avgNorm(b *testing.B, lab *exp.Lab, v compiler.Variant, m *config.Machine, metric string) {
	b.Helper()
	sum, n := 0.0, 0
	for _, name := range exp.BenchNames() {
		r, err := lab.Norm(name, workload.InputA, v, m, m)
		if err != nil {
			b.Fatal(err)
		}
		sum += r
		n++
	}
	b.ReportMetric(sum/float64(n), metric)
}

func BenchmarkFig1(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }

func BenchmarkObsStalls(b *testing.B) { runExperiment(b, "obs-stalls") }

// BenchmarkCampaignWarm measures a fully-warm campaign: every result
// is served from a persistent store populated before the timer starts,
// and each iteration uses a fresh Lab (empty in-process memo) — so the
// number is store-read + render cost, the latency a re-run of a cached
// experiment actually pays. The bench gate's campaign/warm entry keeps
// this path from regressing.
func BenchmarkCampaignWarm(b *testing.B) {
	e, ok := exp.ByID("fig10")
	if !ok {
		b.Fatal("unknown experiment fig10")
	}
	st, err := lab.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	warm := benchLab()
	warm.Sched.Store = st
	if err := exp.Run(e, warm, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := benchLab()
		l.Sched.Store = st
		if err := exp.Run(e, l, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline reports the paper's headline comparison as metrics:
// the average normalized execution time of the wish jump/join/loop
// binary versus the predicated baselines (the paper reports 0.858 vs
// normal and a 13.3% edge over the best predicated binary).
func BenchmarkHeadline(b *testing.B) {
	m := config.DefaultMachine()
	for i := 0; i < b.N; i++ {
		lab := benchLab()
		avgNorm(b, lab, compiler.BaseDef, m, "base-def")
		avgNorm(b, lab, compiler.BaseMax, m, "base-max")
		avgNorm(b, lab, compiler.WishJumpJoin, m, "wish-jj")
		avgNorm(b, lab, compiler.WishJumpJoinLoop, m, "wish-jjl")
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationJRSThreshold sweeps the confidence threshold: too
// low sends hard branches into high-confidence mode (flushes); too high
// wastes predictable branches on predication overhead.
func BenchmarkAblationJRSThreshold(b *testing.B) {
	for _, thr := range []int{2, 8, 14} {
		b.Run(map[int]string{2: "thr2", 8: "thr8", 14: "thr14"}[thr], func(b *testing.B) {
			m := config.DefaultMachine()
			m.JRS.Threshold = thr
			for i := 0; i < b.N; i++ {
				lab := benchLab()
				avgNorm(b, lab, compiler.WishJumpJoinLoop, m, "wish-jjl")
			}
		})
	}
}

// BenchmarkAblationPredMech compares the two predication-support
// mechanisms (§2.1 vs §5.3.3) on the predicated binary.
func BenchmarkAblationPredMech(b *testing.B) {
	for _, sel := range []bool{false, true} {
		name := "c-style"
		if sel {
			name = "select-uop"
		}
		b.Run(name, func(b *testing.B) {
			m := config.DefaultMachine()
			if sel {
				m = m.WithSelectUop()
			}
			for i := 0; i < b.N; i++ {
				lab := benchLab()
				avgNorm(b, lab, compiler.BaseMax, m, "base-max")
			}
		})
	}
}

// BenchmarkAblationLoopPredictor measures the optional biased
// trip-count loop predictor the paper suggests in §3.2.
func BenchmarkAblationLoopPredictor(b *testing.B) {
	for _, bias := range []int{-1, 0, 2} {
		name := map[int]string{-1: "off", 0: "bias0", 2: "bias2"}[bias]
		b.Run(name, func(b *testing.B) {
			m := config.DefaultMachine()
			if bias >= 0 {
				m.UseLoopPredictor = true
				m.LoopPredictorBias = bias
			}
			for i := 0; i < b.N; i++ {
				lab := benchLab()
				avgNorm(b, lab, compiler.WishJumpJoinLoop, m, "wish-jjl")
			}
		})
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkEmulatorSteps(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	src, mem := bench.Build(workload.InputA, workload.DefaultScale)
	p := compiler.MustCompile(src, compiler.NormalBranch)
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		st := emu.New(p)
		mem(st.Mem)
		n, err := st.Run(0, nil)
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	b.ReportMetric(float64(total)/float64(b.N), "µops/run")
}

func BenchmarkPipelineCycles(b *testing.B) {
	bench, _ := workload.ByName("parser")
	src, mem := bench.Build(workload.InputA, workload.DefaultScale)
	p := compiler.MustCompile(src, compiler.WishJumpJoinLoop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cpu.New(config.DefaultMachine(), p, mem)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UPC(), "µPC")
	}
}

// BenchmarkSimulatorThroughput reports the simulator's host-side speed
// (retired µops per wall-clock second, timed around cpu.Run — results
// themselves carry no host measurements) with and without an
// event-trace ring attached: the observability layer's hot-path
// budget. The untraced run pays only nil-ring checks and the per-cycle
// bucket increment; "traced" shows the cost of recording every
// fetch/rename/retire/flush event into a 4096-entry ring. Allocations
// are reported: steady-state simulation must not allocate (the arena +
// flat-table invariant TestSteadyStateZeroAlloc gates), so allocs/op
// stays flat at the per-run setup cost regardless of simulated length.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	src, mem := bench.Build(workload.InputA, workload.DefaultScale)
	p := compiler.MustCompile(src, compiler.WishJumpJoinLoop)
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ups float64
			for i := 0; i < b.N; i++ {
				c, err := cpu.New(config.DefaultMachine(), p, mem)
				if err != nil {
					b.Fatal(err)
				}
				if traced {
					c.AttachTrace(obs.NewRing(4096))
				}
				t0 := time.Now()
				res, err := c.Run(0)
				elapsed := time.Since(t0)
				if err != nil {
					b.Fatal(err)
				}
				if elapsed > 0 {
					ups = float64(res.RetiredUops) / elapsed.Seconds()
				}
			}
			b.ReportMetric(ups, "µops/s")
		})
	}
}

func BenchmarkHybridPredictor(b *testing.B) {
	h := bpred.NewHybrid(bpred.DefaultHybridConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%97) * 4
		p := h.Lookup(pc)
		h.Commit(pc, p, i%3 != 0)
	}
}

func BenchmarkCacheHierarchy(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessD(uint64(i%100000)*64, uint64(i), i%7 == 0)
	}
}

func BenchmarkCompile(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	src, _ := bench.Build(workload.InputA, workload.DefaultScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(src, compiler.WishJumpJoinLoop); err != nil {
			b.Fatal(err)
		}
	}
}
