#!/usr/bin/env bash
# End-to-end exercise of the wishsimd daemon: build both binaries,
# start the daemon with a fresh result store, drive a small campaign
# through `wishbench -server`, and assert
#
#   1. remote stdout is byte-identical to a local run,
#   2. a second remote pass is served from the daemon's caches
#      (hit_ratio > 0 in /metrics),
#   3. SIGTERM drains cleanly and the daemon exits 0.
#
# Runnable locally (./scripts/e2e_serve.sh) and from CI. Needs curl;
# uses jq when present and a grep fallback when not.
set -euo pipefail

cd "$(dirname "$0")/.."

EXP=${E2E_EXP:-fig10}
SCALE=${E2E_SCALE:-0.05}
PORT=${E2E_PORT:-18081}
ADDR="127.0.0.1:${PORT}"
URL="http://${ADDR}"

WORK=$(mktemp -d)
DAEMON_PID=
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "e2e_serve: FAIL: $*" >&2
  echo "---- daemon log ----" >&2
  cat "$WORK/daemon.log" >&2 || true
  exit 1
}

echo "== build =="
go build -o "$WORK/wishsimd" ./cmd/wishsimd
go build -o "$WORK/wishbench" ./cmd/wishbench

echo "== start wishsimd on $ADDR (store: $WORK/cache) =="
"$WORK/wishsimd" -addr "$ADDR" -cache-dir "$WORK/cache" -drain-timeout 60s \
  >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "$URL/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  [[ $i -eq 50 ]] && fail "daemon did not become healthy within 10s"
  sleep 0.2
done
echo "daemon healthy: $(curl -fsS "$URL/healthz")"

echo "== local reference run (-exp $EXP -scale $SCALE) =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -cache-dir "" \
  >"$WORK/local.out" 2>"$WORK/local.err"

echo "== remote run, first pass =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -server "$URL" \
  >"$WORK/remote1.out" 2>"$WORK/remote1.err"
cmp "$WORK/local.out" "$WORK/remote1.out" \
  || fail "remote stdout differs from local stdout (first pass)"
echo "remote pass 1 is byte-identical to the local run"

echo "== remote run, second pass (must hit the daemon's caches) =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -server "$URL" \
  >"$WORK/remote2.out" 2>"$WORK/remote2.err"
cmp "$WORK/local.out" "$WORK/remote2.out" \
  || fail "remote stdout differs from local stdout (second pass)"

METRICS=$(curl -fsS "$URL/metrics")
echo "metrics: $METRICS"
if command -v jq >/dev/null 2>&1; then
  HIT=$(printf '%s' "$METRICS" | jq -r '.lab.hit_ratio')
  AWKOK=$(printf '%s' "$HIT" | awk '{print ($1 > 0) ? "yes" : "no"}')
  [[ "$AWKOK" == yes ]] || fail "cache hit ratio is $HIT after a repeated campaign, want > 0"
else
  printf '%s' "$METRICS" | grep -q '"hit_ratio":0[,}]' \
    && fail "cache hit ratio is 0 after a repeated campaign, want > 0"
  printf '%s' "$METRICS" | grep -q '"hit_ratio":' \
    || fail "metrics body carries no hit_ratio field"
fi
echo "cache hit ratio > 0 confirmed"

echo "== SIGTERM: graceful drain =="
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
[[ $STATUS -eq 0 ]] || fail "daemon exited $STATUS after SIGTERM, want a clean 0"
grep -q "drained cleanly" "$WORK/daemon.log" \
  || fail "daemon log is missing the clean-drain line"
DAEMON_PID=

echo "e2e_serve: PASS"
