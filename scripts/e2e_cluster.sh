#!/usr/bin/env bash
# End-to-end exercise of the sharded cluster: build the binaries, start
# three wishsimd workers plus a coordinator fronting them, drive a
# campaign through `wishbench -server <coordinator>`, and assert
#
#   1. cluster stdout is byte-identical to a local (in-process) run,
#   2. the coordinator actually sharded (every worker saw requests),
#   3. a fresh campaign survives SIGKILL of one worker mid-flight and
#      its output is still byte-identical,
#   4. /metrics reflects the death (live_workers drops, reroutes move),
#   5. SIGTERM drains the coordinator cleanly and it exits 0.
#
# Runnable locally (./scripts/e2e_cluster.sh) and from CI. Needs curl;
# uses jq when present and a grep fallback when not.
set -euo pipefail

cd "$(dirname "$0")/.."

EXP=${E2E_EXP:-fig10}
SCALE=${E2E_SCALE:-0.05}
SCALE2=${E2E_SCALE2:-0.07}
BASE_PORT=${E2E_PORT:-18091}
COORD_PORT=$((BASE_PORT + 3))
COORD="http://127.0.0.1:${COORD_PORT}"

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "e2e_cluster: FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    echo "---- $log ----" >&2
    cat "$log" >&2 || true
  done
  exit 1
}

wait_healthy() {
  local url=$1 what=$2
  for i in $(seq 1 50); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    [[ $i -eq 50 ]] && fail "$what did not become healthy within 10s"
    sleep 0.2
  done
}

metric() { # metric FIELD — integer field from coordinator /metrics
  local json field=$1
  json=$(curl -fsS "$COORD/metrics")
  if command -v jq >/dev/null 2>&1; then
    printf '%s' "$json" | jq -r ".$field"
  else
    printf '%s' "$json" | grep -o "\"$field\":[0-9]*" | head -1 | cut -d: -f2
  fi
}

echo "== build =="
go build -o "$WORK/wishsimd" ./cmd/wishsimd
go build -o "$WORK/wishbench" ./cmd/wishbench

echo "== start 3 workers =="
WORKER_URLS=()
WORKER_PIDS=()
for i in 0 1 2; do
  port=$((BASE_PORT + i))
  "$WORK/wishsimd" -addr "127.0.0.1:${port}" -cache-dir "$WORK/cache$i" \
    -drain-timeout 60s >"$WORK/worker$i.log" 2>&1 &
  pid=$!
  disown "$pid" # keep bash from printing "Killed" when SIGKILL reaps it
  PIDS+=("$pid")
  WORKER_PIDS+=("$pid")
  WORKER_URLS+=("http://127.0.0.1:${port}")
done
for i in 0 1 2; do
  wait_healthy "${WORKER_URLS[$i]}" "worker $i"
done

echo "== start coordinator on :$COORD_PORT =="
"$WORK/wishsimd" -coordinator \
  -worker "$(IFS=,; echo "${WORKER_URLS[*]}")" \
  -addr "127.0.0.1:${COORD_PORT}" -probe-interval 500ms -hedge-after 10s \
  -drain-timeout 60s -v >"$WORK/coordinator.log" 2>&1 &
COORD_PID=$!
PIDS+=("$COORD_PID")
wait_healthy "$COORD" "coordinator"
echo "coordinator healthy: $(curl -fsS "$COORD/healthz")"

echo "== local reference run (-exp $EXP -scale $SCALE) =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -cache-dir "" \
  >"$WORK/local.out" 2>"$WORK/local.err"

echo "== cluster run =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -server "$COORD" \
  >"$WORK/cluster.out" 2>"$WORK/cluster.err"
cmp "$WORK/local.out" "$WORK/cluster.out" \
  || fail "cluster stdout differs from the local run"
echo "cluster run is byte-identical to the local run"

for i in 0 1 2; do
  grep -q '"run"' <(curl -fsS "${WORKER_URLS[$i]}/metrics") \
    || fail "worker $i saw no /v1/run traffic — campaign was not sharded"
done
echo "all 3 workers served shards"

echo "== kill worker 1 mid-campaign (fresh scale $SCALE2), rerun =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE2" -cache-dir "" \
  >"$WORK/local2.out" 2>"$WORK/local2.err"
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE2" -server "$COORD" \
  >"$WORK/cluster2.out" 2>"$WORK/cluster2.err" &
BENCH_PID=$!
# No sleep: the kill must land while the campaign is in flight. The
# coordinator still believes the worker is live (next probe is up to
# -probe-interval away), so its shard fails over on the request path.
kill -9 "${WORKER_PIDS[1]}" 2>/dev/null || true
echo "worker 1 SIGKILLed"
wait "$BENCH_PID" || fail "wishbench failed after a worker was killed mid-campaign"
cmp "$WORK/local2.out" "$WORK/cluster2.out" \
  || fail "post-kill cluster stdout differs from the local run"
echo "post-kill cluster run is still byte-identical"

sleep 1 # let a probe round observe the corpse
LIVE=$(metric live_workers)
[[ "$LIVE" == 2 ]] || fail "live_workers is $LIVE after the kill, want 2"
GEN=$(metric generation)
[[ "$GEN" -ge 1 ]] || fail "membership generation is $GEN after a death, want >= 1"
echo "metrics confirm the death: live_workers=$LIVE generation=$GEN reroutes=$(metric reroutes)"

echo "== SIGTERM: graceful coordinator drain =="
kill -TERM "$COORD_PID"
STATUS=0
wait "$COORD_PID" || STATUS=$?
[[ $STATUS -eq 0 ]] || fail "coordinator exited $STATUS after SIGTERM, want a clean 0"
grep -q "drained cleanly" "$WORK/coordinator.log" \
  || fail "coordinator log is missing the clean-drain line"

echo "e2e_cluster: PASS"
