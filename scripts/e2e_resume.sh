#!/usr/bin/env bash
# End-to-end exercise of crash-safe checkpoint/resume (DESIGN.md §15):
#
# Part 1 — wishbench campaign journal:
#   1. SIGKILL a `wishbench -journal` campaign mid-flight,
#   2. resume it and assert stdout is byte-identical to an
#      uninterrupted control run with resumed_frames > 0,
#   3. resume the completed campaign again and assert it runs
#      0 fresh simulations.
#
# Part 2 — coordinator merge-progress checkpoint:
#   4. SIGKILL a `wishsimd -coordinator -journal` mid-campaign,
#   5. restart it on the same journal and assert it resumed frames,
#      answers re-submitted work from the checkpoint
#      (checkpoint_hits > 0), and the rerun output is byte-identical
#      to a local run.
#
# Runnable locally (./scripts/e2e_resume.sh) and from CI. Needs curl;
# uses jq when present and a grep fallback when not.
set -euo pipefail

cd "$(dirname "$0")/.."

EXP=${E2E_EXP:-fig10}
SCALE=${E2E_SCALE:-0.05}
BASE_PORT=${E2E_PORT:-18201}
COORD_PORT=$((BASE_PORT + 2))
COORD="http://127.0.0.1:${COORD_PORT}"

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "e2e_resume: FAIL: $*" >&2
  for log in "$WORK"/*.log "$WORK"/*.err; do
    [[ -f "$log" ]] || continue
    echo "---- $log ----" >&2
    cat "$log" >&2 || true
  done
  exit 1
}

wait_healthy() {
  local url=$1 what=$2
  for i in $(seq 1 50); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    [[ $i -eq 50 ]] && fail "$what did not become healthy within 10s"
    sleep 0.2
  done
}

metric() { # metric JQ_PATH GREP_FIELD — field from coordinator /metrics
  local json path=$1 field=$2
  json=$(curl -fsS "$COORD/metrics")
  if command -v jq >/dev/null 2>&1; then
    printf '%s' "$json" | jq -r "$path"
  else
    printf '%s' "$json" | grep -o "\"$field\":[0-9]*" | head -1 | cut -d: -f2
  fi
}

echo "== build =="
go build -o "$WORK/wishsimd" ./cmd/wishsimd
go build -o "$WORK/wishbench" ./cmd/wishbench

echo "== control run (-exp $EXP -scale $SCALE, no journal) =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -cache-dir "" \
  >"$WORK/control.out" 2>"$WORK/control.err"

echo "== part 1: SIGKILL a journaled campaign mid-flight =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -cache-dir "" -j 1 -v \
  -journal "$WORK/journal" >"$WORK/killed.out" 2>"$WORK/killed.err" &
BENCH_PID=$!
disown "$BENCH_PID" # keep bash from printing "Killed" when SIGKILL reaps it
PIDS+=("$BENCH_PID")
# With -j 1 the campaign is serial: when the N-th "ran" progress line
# appears, result N-1 is already journaled (append is fsync'd before
# the next simulation starts). Kill after the 2nd line: at least one
# result frame is durable and the campaign is still mid-flight.
for i in $(seq 1 600); do
  if [[ $(grep -c " ran " "$WORK/killed.err" 2>/dev/null || true) -ge 2 ]]; then break; fi
  [[ $i -eq 600 ]] && fail "campaign never completed 2 simulations within 60s"
  sleep 0.1
done
kill -9 "$BENCH_PID" 2>/dev/null || true
echo "campaign SIGKILLed after ≥1 journaled result"

JFILE=$(ls "$WORK/journal"/campaign-*.wbj 2>/dev/null | head -1)
[[ -n "$JFILE" ]] || fail "no journal file was created"

echo "== part 1: resume =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -cache-dir "" \
  -journal "$WORK/journal" >"$WORK/resumed.out" 2>"$WORK/resumed.err"
cmp "$WORK/control.out" "$WORK/resumed.out" \
  || fail "resumed stdout differs from the uninterrupted control run"
grep -Eq 'journal .*resumed_frames=[1-9]' "$WORK/resumed.err" \
  || fail "resume replayed no frames (expected resumed_frames > 0)"
echo "resumed run is byte-identical with $(grep -Eo 'resumed_frames=[0-9]+' "$WORK/resumed.err" | head -1)"

echo "== part 1: second resume simulates nothing =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -cache-dir "" \
  -journal "$WORK/journal" >"$WORK/resumed2.out" 2>"$WORK/resumed2.err"
cmp "$WORK/control.out" "$WORK/resumed2.out" \
  || fail "second resume stdout differs from the control run"
grep -q "0 fresh simulations" "$WORK/resumed2.err" \
  || fail "second resume of a complete campaign ran fresh simulations"
echo "second resume: 0 fresh simulations, byte-identical"

echo "== part 2: start 2 workers + checkpointing coordinator =="
WORKER_URLS=()
for i in 0 1; do
  port=$((BASE_PORT + i))
  "$WORK/wishsimd" -addr "127.0.0.1:${port}" -cache-dir "" \
    -drain-timeout 60s >"$WORK/worker$i.log" 2>&1 &
  pid=$!
  disown "$pid"
  PIDS+=("$pid")
  WORKER_URLS+=("http://127.0.0.1:${port}")
done
for i in 0 1; do
  wait_healthy "${WORKER_URLS[$i]}" "worker $i"
done

start_coordinator() {
  "$WORK/wishsimd" -coordinator \
    -worker "$(IFS=,; echo "${WORKER_URLS[*]}")" \
    -addr "127.0.0.1:${COORD_PORT}" -probe-interval 500ms \
    -journal "$WORK/cjournal" -drain-timeout 60s \
    >>"$WORK/coordinator.log" 2>&1 &
  COORD_PID=$!
  disown "$COORD_PID"
  PIDS+=("$COORD_PID")
  wait_healthy "$COORD" "coordinator"
}
start_coordinator

echo "== part 2: SIGKILL the coordinator mid-campaign =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -server "$COORD" \
  >"$WORK/ckilled.out" 2>"$WORK/ckilled.err" &
CBENCH_PID=$!
disown "$CBENCH_PID"
PIDS+=("$CBENCH_PID")
# The coordinator journal holds only result frames (no spec set), so
# any growth past the 8-byte header means a checkpointed result.
CJFILE="$WORK/cjournal/coordinator.wbj"
for i in $(seq 1 600); do
  size=$(stat -c%s "$CJFILE" 2>/dev/null || echo 0)
  if [[ "$size" -gt 8 ]]; then break; fi
  [[ $i -eq 600 ]] && fail "coordinator checkpointed nothing within 60s"
  sleep 0.1
done
kill -9 "$COORD_PID" 2>/dev/null || true
wait "$CBENCH_PID" 2>/dev/null || true # client fails with the coordinator down
echo "coordinator SIGKILLed after ≥1 checkpointed result"

echo "== part 2: restart coordinator on the same journal =="
start_coordinator
grep -Eq 'journal .*resumed_frames=[1-9]' "$WORK/coordinator.log" \
  || fail "restarted coordinator resumed no frames"
RESUMED=$(metric .journal.resumed resumed)
[[ "$RESUMED" -ge 1 ]] || fail "/metrics journal.resumed is $RESUMED, want >= 1"
echo "coordinator resumed $RESUMED checkpointed frames"

echo "== part 2: rerun through the restarted coordinator =="
"$WORK/wishbench" -exp "$EXP" -scale "$SCALE" -server "$COORD" \
  >"$WORK/cresumed.out" 2>"$WORK/cresumed.err"
cmp "$WORK/control.out" "$WORK/cresumed.out" \
  || fail "post-restart cluster stdout differs from the local control run"
HITS=$(metric .checkpoint_hits checkpoint_hits)
[[ "$HITS" -ge 1 ]] || fail "checkpoint_hits is $HITS after resume, want >= 1"
echo "post-restart run is byte-identical with checkpoint_hits=$HITS"

echo "e2e_resume: PASS"
