module wishbranch

go 1.22
